//! Feature aggregation kernels over mini-batch blocks.
//!
//! Aggregation is a sparse linear operator `A = C · H_src` where `C` is
//! the (coefficient-weighted) incidence of the sampled bipartite layer;
//! its backward pass is the transpose `∂H_src = Cᵀ · ∂A`. Keeping both
//! directions as explicit kernels makes the semantics testable (the FPGA
//! kernel simulator must produce identical results) and mirrors the
//! paper's scatter-gather hardware design (§IV-C).

use hyscale_sampler::Block;
use hyscale_tensor::Matrix;

/// Pre-computed GCN normalisation coefficients for one block.
///
/// GCN (paper Eq. 3) weighs the contribution of `u → v` by
/// `1/√(D(v)·D(u))`. In mini-batch training the degrees are the
/// *in-batch sampled* degrees (plus one for the implicit self-loop),
/// the standard mini-batch approximation.
#[derive(Clone, Debug)]
pub struct GcnCoefficients {
    /// Per-edge coefficient, aligned with `block.edge_src/edge_dst`.
    pub edge: Vec<f32>,
    /// Per-destination self-loop coefficient.
    pub self_loop: Vec<f32>,
}

impl GcnCoefficients {
    /// Unnormalised sum aggregation with a weighted self-loop — the GIN
    /// aggregator (`a_v = (1+ε)·h_v + Σ h_u`, Xu et al. 2019). With
    /// `eps = 0` this is GIN-0.
    pub fn gin(block: &Block, eps: f32) -> Self {
        Self {
            edge: vec![1.0; block.num_edges()],
            self_loop: vec![1.0 + eps; block.num_dst],
        }
    }

    /// Compute symmetric-normalised coefficients from in-batch degrees.
    pub fn from_block(block: &Block) -> Self {
        let deg_dst = block.dst_in_degrees();
        let deg_src = block.src_out_degrees();
        let norm_dst: Vec<f32> = deg_dst
            .iter()
            .map(|&d| 1.0 / ((d as f32 + 1.0).sqrt()))
            .collect();
        let norm_src: Vec<f32> = deg_src
            .iter()
            .map(|&d| 1.0 / ((d as f32 + 1.0).sqrt()))
            .collect();
        let edge = block
            .edge_src
            .iter()
            .zip(&block.edge_dst)
            .map(|(&s, &d)| norm_src[s as usize] * norm_dst[d as usize])
            .collect();
        // self loop: treat v as its own source; v < num_dst <= num_src
        let self_loop = (0..block.num_dst)
            .map(|v| norm_src[v] * norm_dst[v])
            .collect();
        Self { edge, self_loop }
    }
}

/// GCN aggregation: `a_d = c_self(d)·h_d + Σ_{(s,d)∈E} c(s,d)·h_s`.
///
/// Accumulation is in edge order, matching the FPGA simulator, so results
/// are bit-identical across devices.
///
/// # Panics
/// If shapes disagree with the block.
pub fn aggregate_gcn(block: &Block, h_src: &Matrix, coef: &GcnCoefficients) -> Matrix {
    assert_eq!(h_src.rows(), block.num_src, "h_src rows must equal num_src");
    assert_eq!(coef.edge.len(), block.num_edges());
    let f = h_src.cols();
    let mut out = Matrix::zeros(block.num_dst, f);
    // self loops first (dst is prefix of src)
    for d in 0..block.num_dst {
        let c = coef.self_loop[d];
        let src_row = h_src.row(d);
        let dst_row = out.row_mut(d);
        for (o, x) in dst_row.iter_mut().zip(src_row) {
            *o = c * *x;
        }
    }
    for (i, (&s, &d)) in block.edge_src.iter().zip(&block.edge_dst).enumerate() {
        let c = coef.edge[i];
        scatter_add(&mut out, d as usize, h_src.row(s as usize), c, f);
    }
    out
}

/// Transpose of [`aggregate_gcn`]: `∂h_s = Σ_{(s,d)} c(s,d)·∂a_d`
/// (+ self-loop term for the dst prefix).
pub fn aggregate_gcn_backward(block: &Block, d_agg: &Matrix, coef: &GcnCoefficients) -> Matrix {
    assert_eq!(d_agg.rows(), block.num_dst, "d_agg rows must equal num_dst");
    let f = d_agg.cols();
    let mut out = Matrix::zeros(block.num_src, f);
    for d in 0..block.num_dst {
        let c = coef.self_loop[d];
        scatter_add(&mut out, d, d_agg.row(d), c, f);
    }
    for (i, (&s, &d)) in block.edge_src.iter().zip(&block.edge_dst).enumerate() {
        let c = coef.edge[i];
        scatter_add(&mut out, s as usize, d_agg.row(d as usize), c, f);
    }
    out
}

/// Mean aggregation: `m_d = (1/|N(d)|) Σ_{(s,d)∈E} h_s` (zero row when a
/// destination sampled no neighbours). The neighbour half of GraphSAGE
/// (paper Eq. 4).
pub fn aggregate_mean(block: &Block, h_src: &Matrix) -> Matrix {
    assert_eq!(h_src.rows(), block.num_src, "h_src rows must equal num_src");
    let f = h_src.cols();
    let deg = block.dst_in_degrees();
    let mut out = Matrix::zeros(block.num_dst, f);
    for (&s, &d) in block.edge_src.iter().zip(&block.edge_dst) {
        scatter_add(&mut out, d as usize, h_src.row(s as usize), 1.0, f);
    }
    for (d, &deg_d) in deg.iter().enumerate() {
        if deg_d > 0 {
            let inv = 1.0 / deg_d as f32;
            for v in out.row_mut(d) {
                *v *= inv;
            }
        }
    }
    out
}

/// Transpose of [`aggregate_mean`]: `∂h_s = Σ_{(s,d)} ∂m_d / |N(d)|`.
pub fn aggregate_mean_backward(block: &Block, d_mean: &Matrix) -> Matrix {
    assert_eq!(
        d_mean.rows(),
        block.num_dst,
        "d_mean rows must equal num_dst"
    );
    let f = d_mean.cols();
    let deg = block.dst_in_degrees();
    let mut out = Matrix::zeros(block.num_src, f);
    for (&s, &d) in block.edge_src.iter().zip(&block.edge_dst) {
        let dd = d as usize;
        if deg[dd] > 0 {
            scatter_add(
                &mut out,
                s as usize,
                d_mean.row(dd),
                1.0 / deg[dd] as f32,
                f,
            );
        }
    }
    out
}

#[inline]
fn scatter_add(out: &mut Matrix, row: usize, src: &[f32], coef: f32, f: usize) {
    debug_assert_eq!(src.len(), f);
    let dst = out.row_mut(row);
    for (o, x) in dst.iter_mut().zip(src) {
        *o += coef * *x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 src, 2 dst; edges: (0→0) (2→0) (1→1) (2→1)
    fn block() -> Block {
        Block {
            num_src: 3,
            num_dst: 2,
            edge_src: vec![0, 2, 1, 2],
            edge_dst: vec![0, 0, 1, 1],
        }
    }

    fn h() -> Matrix {
        Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn mean_aggregation_values() {
        let m = aggregate_mean(&block(), &h());
        // dst0: mean(h0, h2) = (3, 4); dst1: mean(h1, h2) = (4, 5)
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn mean_zero_degree_stays_zero() {
        let b = Block {
            num_src: 2,
            num_dst: 2,
            edge_src: vec![0],
            edge_dst: vec![0],
        };
        let x = Matrix::from_vec(2, 1, vec![5.0, 7.0]);
        let m = aggregate_mean(&b, &x);
        assert_eq!(m.row(0), &[5.0]);
        assert_eq!(m.row(1), &[0.0]);
    }

    #[test]
    fn gcn_self_loop_only() {
        let b = Block {
            num_src: 1,
            num_dst: 1,
            edge_src: vec![],
            edge_dst: vec![],
        };
        let x = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        let coef = GcnCoefficients::from_block(&b);
        let a = aggregate_gcn(&b, &x, &coef);
        // deg_dst = 0, deg_src = 0 => coef = 1
        assert_eq!(a.row(0), &[2.0, 4.0]);
    }

    #[test]
    fn gcn_coefficients_symmetric_normalisation() {
        let b = block();
        let coef = GcnCoefficients::from_block(&b);
        // dst0 in-degree 2, src2 out-degree 2 -> edge (2->0): 1/sqrt(3*3)
        assert!((coef.edge[1] - 1.0 / 3.0).abs() < 1e-6);
        // self loop of dst0: src0 out-degree 1 -> 1/sqrt(2*3)
        assert!((coef.self_loop[0] - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
    }

    /// The adjoint identity <C x, y> == <x, Cᵀ y> for random tensors; this
    /// is the property the backward pass must satisfy for gradients to be
    /// exact.
    #[test]
    fn gcn_backward_is_adjoint() {
        let b = block();
        let coef = GcnCoefficients::from_block(&b);
        let x = h();
        let y = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]);
        let cx = aggregate_gcn(&b, &x, &coef);
        let cty = aggregate_gcn_backward(&b, &y, &coef);
        let lhs: f32 = cx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(cty.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn mean_backward_is_adjoint() {
        let b = block();
        let x = h();
        let y = Matrix::from_vec(2, 2, vec![1.0, 0.0, -0.5, 2.0]);
        let cx = aggregate_mean(&b, &x);
        let cty = aggregate_mean_backward(&b, &y);
        let lhs: f32 = cx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(cty.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "h_src rows")]
    fn shape_checked() {
        let b = block();
        let _ = aggregate_mean(&b, &Matrix::zeros(5, 2));
    }
}
